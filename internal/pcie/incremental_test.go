package pcie

// Tests for the incremental solver's machinery: interned routes, the
// transfer-record pool, same-instant solve coalescing, the completion
// generation guard, and the drained-flow residue threshold.

import (
	"math"
	"testing"

	"repro/internal/sim"
)

// TestRouteReuseMatchesAdHoc checks that transfers over one interned
// Route time out identically to the ad-hoc variadic form.
func TestRouteReuseMatchesAdHoc(t *testing.T) {
	s := sim.New()
	n := NewNetwork(s)
	a := NewServer("rc-a", 7.9e9)
	w := NewServer("wire", 2.9e9)
	b := NewServer("rc-b", 7.9e9)
	r := n.NewRoute(a, w, b)
	if got := r.Bottleneck(); got != 2.9e9 {
		t.Fatalf("bottleneck: got %g, want 2.9e9", got)
	}
	var viaRoute, adHoc sim.Time
	s.Go("route", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			n.TransferRoute(p, 256<<10, math.Inf(1), r)
		}
		viaRoute = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	s2 := sim.New()
	n2 := NewNetwork(s2)
	a2, w2, b2 := NewServer("rc-a", 7.9e9), NewServer("wire", 2.9e9), NewServer("rc-b", 7.9e9)
	s2.Go("adhoc", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			n2.Transfer(p, 256<<10, math.Inf(1), a2, w2, b2)
		}
		adHoc = p.Now()
	})
	if err := s2.Run(); err != nil {
		t.Fatal(err)
	}
	if viaRoute != adHoc {
		t.Fatalf("interned route drifted: %v via Route, %v ad hoc", viaRoute, adHoc)
	}
}

// TestSerialTransfersReusePool checks that back-to-back blocking
// transfers recycle one flow record and keep exact per-transfer timing:
// each chunk takes exactly ceil(bytes/rate) nanoseconds with no drift
// accumulating across the pool reuse.
func TestSerialTransfersReusePool(t *testing.T) {
	s := sim.New()
	n := NewNetwork(s)
	srv := NewServer("wire", 1e9)
	r := n.NewRoute(srv)
	const chunks = 50
	var end sim.Time
	s.Go("serial", func(p *sim.Proc) {
		for i := 0; i < chunks; i++ {
			n.TransferRoute(p, 64<<10, math.Inf(1), r)
		}
		end = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if want := sim.Time(chunks * 65536); end != want {
		t.Fatalf("serial chunks: got %v, want exactly %v", end, want)
	}
	if got := len(n.pool); got != 1 {
		t.Fatalf("pool: got %d records, want the 1 recycled one", got)
	}
}

// TestSameInstantStartsCoalesceToOneSolve starts three equal flows at
// the same instant and checks (white box) that the full solver runs
// exactly once for them: the first start takes the idle inline path, and
// the other two piggyback on a single coalesced solve event.
func TestSameInstantStartsCoalesceToOneSolve(t *testing.T) {
	s := sim.New()
	n := NewNetwork(s)
	srv := NewServer("wire", 1e9)
	r := n.NewRoute(srv)
	ends := make([]sim.Time, 3)
	for i := 0; i < 3; i++ {
		i := i
		s.Go("f", func(p *sim.Proc) {
			n.TransferRoute(p, 1<<20, math.Inf(1), r)
			ends[i] = p.Now()
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Three equal flows share 1e9 B/s: each finishes at 3 x 1048.576us.
	for i, end := range ends {
		if want := sim.Time(3 * 1048576); end != want {
			t.Fatalf("flow %d: got %v, want exactly %v", i, end, want)
		}
	}
	// epoch counts solveFull runs: one for the coalesced 3-flow solve.
	// (Single-flow fast paths and the final empty drain never run it.)
	if n.epoch != 1 {
		t.Fatalf("solveFull ran %d times, want 1 (coalescing broken)", n.epoch)
	}
}

// TestStaleCompletionEventIsIgnored forces the gen-guard scenario: flow
// A's completion event is scheduled, then a same-server start re-solves
// and reschedules, leaving the original event in the heap with a stale
// generation. The stale event must not complete A early — and must not
// touch the pooled record even after A's real completion recycles it.
func TestStaleCompletionEventIsIgnored(t *testing.T) {
	s := sim.New()
	n := NewNetwork(s)
	srv := NewServer("wire", 1e9)
	r := n.NewRoute(srv)
	var aEnd, cEnd sim.Time
	s.Go("a", func(p *sim.Proc) {
		// A alone: completion event lands at 1048576ns, gen 1.
		n.TransferRoute(p, 1<<20, math.Inf(1), r)
		aEnd = p.Now()
		// A's record returns to the pool; the next transfer reuses it.
		// The stale gen-1 event (still in the heap if B's join bumped the
		// generation) fires while C is in flight and must be ignored.
		n.TransferRoute(p, 1<<20, math.Inf(1), r)
		cEnd = p.Now()
	})
	s.GoAfter("b", 500*sim.Microsecond, func(p *sim.Proc) {
		n.TransferRoute(p, 1<<20, math.Inf(1), r)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Worked example (same as TestStaggeredJoinAndLeave): A drains at
	// 1597.152us, so its stale gen-1 event at 1048.576us fired mid-share.
	if want := sim.Time(1597152); aEnd != want {
		t.Fatalf("flow A: got %v, want exactly %v (stale event completed it early?)", aEnd, want)
	}
	// C (A's second transfer, on the recycled record) starts at A's
	// completion instant and runs against B's tail: B has 500000 B left,
	// shared at 0.5e9 it drains at 2597.152us (C moves 500000 B
	// meanwhile), and C finishes its last 548576 B alone at 3145.728us.
	if want := sim.Time(3145728); cEnd != want {
		t.Fatalf("flow C: got %v, want exactly %v", cEnd, want)
	}
}

// TestCompletionAtCoalescedInstant starts a flow at exactly the instant
// an earlier flow completes. The completion wakeup, the waiter's new
// start, and the coalesced solve all share one timestamp; the new flow
// must still run at full rate for its exact duration.
func TestCompletionAtCoalescedInstant(t *testing.T) {
	s := sim.New()
	n := NewNetwork(s)
	srv := NewServer("wire", 1e9)
	r := n.NewRoute(srv)
	var aEnd, bEnd sim.Time
	s.Go("a", func(p *sim.Proc) {
		n.TransferRoute(p, 1<<20, math.Inf(1), r)
		aEnd = p.Now()
	})
	// B starts at 1048576ns — the exact instant A's completion fires.
	s.GoAfter("b", sim.Duration(1048576), func(p *sim.Proc) {
		n.TransferRoute(p, 1<<20, math.Inf(1), r)
		bEnd = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if want := sim.Time(1048576); aEnd != want {
		t.Fatalf("flow A: got %v, want exactly %v", aEnd, want)
	}
	if want := sim.Time(2 * 1048576); bEnd != want {
		t.Fatalf("flow B: got %v, want exactly %v (same-instant start mispriced)", bEnd, want)
	}
}

// TestResidueThresholdDrainsFractionalRemainders pins the threshold's
// value and checks, across awkward rate/size pairs whose durations are
// not integral nanoseconds, that every flow completes at the ceiling of
// its exact duration: the sub-byte residue left by scheduling the event
// on the nanosecond grid counts as drained rather than rescheduling a
// spurious extra event.
func TestResidueThresholdDrainsFractionalRemainders(t *testing.T) {
	if residueThreshold != 0.5 {
		t.Fatalf("residueThreshold = %g, want 0.5 (see the constant's rationale)", residueThreshold)
	}
	rates := []float64{2.9e9, 1e9 / 3, 7.877e8, 3.3e9}
	sizes := []int64{1000, 4<<10 + 977, 64<<10 + 1, 1 << 20}
	for _, rate := range rates {
		for _, size := range sizes {
			s := sim.New()
			n := NewNetwork(s)
			srv := NewServer("wire", rate)
			r := n.NewRoute(srv)
			var end sim.Time
			s.Go("f", func(p *sim.Proc) {
				n.TransferRoute(p, size, math.Inf(1), r)
				end = p.Now()
			})
			if err := s.Run(); err != nil {
				t.Fatal(err)
			}
			want := sim.Time(math.Ceil(float64(size) / rate * 1e9))
			if end != want {
				t.Errorf("rate %g size %d: got %v, want exactly %v", rate, size, end, want)
			}
		}
	}
}
