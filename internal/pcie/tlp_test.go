package pcie

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func TestMemWriteTLPSegmentation(t *testing.T) {
	cases := []struct {
		n, mp   int
		packets int
		wire    int
	}{
		{0, 256, 0, 0},
		{1, 256, 1, 1 + 26},
		{256, 256, 1, 256 + 26},
		{257, 256, 2, 257 + 52},
		{1024, 256, 4, 1024 + 104},
		{1 << 20, 256, 4096, 1<<20 + 4096*26},
	}
	for _, c := range cases {
		p, w := MemWriteTLPs(c.n, c.mp)
		if p != c.packets || w != c.wire {
			t.Errorf("MemWriteTLPs(%d, %d) = (%d, %d), want (%d, %d)",
				c.n, c.mp, p, w, c.packets, c.wire)
		}
	}
}

func TestFluidModelMatchesTLPAccounting(t *testing.T) {
	// The fluid network's protocol efficiency must equal the exact
	// packet-level payload efficiency for full-size TLP streams.
	par := model.Default()
	fluid := par.ProtocolEfficiency()
	exact := PayloadEfficiency(par.MaxPayload)
	if math.Abs(fluid-exact) > 1e-12 {
		t.Fatalf("fluid efficiency %v != TLP accounting %v", fluid, exact)
	}
	if par.TLPOverhead != TLPOverheadBytes {
		t.Fatalf("model TLPOverhead %d disagrees with pcie accounting %d",
			par.TLPOverhead, TLPOverheadBytes)
	}
}

func TestReadRoundTripCosts(t *testing.T) {
	req, comp := ReadRoundTrip(4, 256)
	if req != TLPOverheadBytes {
		t.Errorf("request bytes = %d", req)
	}
	if comp != 4+TLPOverheadBytes {
		t.Errorf("completion bytes = %d", comp)
	}
	// Reads return less payload per wire byte than writes at small
	// sizes — the asymmetry behind WindowReadBW << WindowWriteBW.
	_, wWire := MemWriteTLPs(4, 256)
	if req+comp <= wWire {
		t.Error("read round trip should cost more wire than a posted write")
	}
	if r, c := ReadRoundTrip(0, 256); r != 0 || c != 0 {
		t.Error("zero-byte read should be free")
	}
}

func TestCreditUnits(t *testing.T) {
	h, d := CreditUnits(256, 256)
	if h != 1 || d != 16 {
		t.Errorf("credits(256) = (%d, %d), want (1, 16)", h, d)
	}
	h, d = CreditUnits(1000, 256)
	if h != 4 || d != 63 {
		t.Errorf("credits(1000) = (%d, %d), want (4, 63)", h, d)
	}
}

func TestTLPProperties(t *testing.T) {
	// Properties: wire bytes ≥ payload; packets minimal; efficiency
	// improves with MaxPayload.
	f := func(rawN uint16, mpSel uint8) bool {
		n := int(rawN)
		mps := []int{128, 256, 512, 1024, 2048, 4096}
		mp := mps[int(mpSel)%len(mps)]
		p, w := MemWriteTLPs(n, mp)
		if n == 0 {
			return p == 0 && w == 0
		}
		if w < n || p != (n+mp-1)/mp {
			return false
		}
		// Larger MaxPayload never needs more wire bytes.
		if mp < 4096 {
			_, w2 := MemWriteTLPs(n, mp*2)
			if w2 > w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	if PayloadEfficiency(512) <= PayloadEfficiency(128) {
		t.Error("efficiency must grow with MaxPayload")
	}
}
