// Package pcie models PCIe data movement as a fluid-flow network.
//
// Every bulk transfer (DMA or CPU window copy) is a flow crossing a set of
// capacitated servers: the source host's root complex, the wire of each
// traversed link, the destination root complex, and a private server for
// the mover's own maximum rate (DMA engine or CPU copy speed). Concurrent
// flows share server capacity max-min fairly; the network re-solves the
// allocation whenever a flow starts or finishes and advances each flow's
// progress in closed form between those instants.
//
// This is how the repository reproduces Fig 8 of the paper: one flow alone
// is bottlenecked by its DMA engine, while three simultaneous ring flows
// also contend pairwise inside each host's root complex, shaving a few
// percent off each — the paper's "slightly diminished" simultaneous rate.
package pcie

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// Server is a capacitated stage of the fabric (a root complex, a cable, a
// switch port). Capacity is in bytes per second of virtual time.
type Server struct {
	name     string
	capacity float64
}

// NewServer returns a server with the given capacity in bytes/second.
func NewServer(name string, capacity float64) *Server {
	if capacity <= 0 {
		panic("pcie: server capacity must be positive: " + name)
	}
	return &Server{name: name, capacity: capacity}
}

// Name returns the server's diagnostic label.
func (s *Server) Name() string { return s.name }

// Capacity returns the server's capacity in bytes/second.
func (s *Server) Capacity() float64 { return s.capacity }

// Transfer is an in-flight flow. Wait blocks the calling process until the
// last byte has drained through every server.
type Transfer struct {
	servers   []*Server
	limit     float64
	remaining float64
	rate      float64
	last      sim.Time
	done      *sim.Completion
	frozen    bool // scratch for the solver
}

// Wait blocks until the transfer completes.
func (t *Transfer) Wait(p *sim.Proc) { t.done.Wait(p) }

// Done reports whether the transfer has completed.
func (t *Transfer) Done() bool { return t.done.Done() }

// Network is the fluid-flow solver bound to one simulator.
type Network struct {
	sim   *sim.Simulator
	flows []*Transfer
	gen   uint64 // invalidates stale completion events
}

// NewNetwork returns an empty flow network on s.
func NewNetwork(s *sim.Simulator) *Network {
	return &Network{sim: s}
}

// ActiveFlows reports the number of in-flight transfers.
func (n *Network) ActiveFlows() int { return len(n.flows) }

// Start begins a transfer of the given size through the listed servers,
// additionally capped at limit bytes/second (the mover's own speed; pass
// math.Inf(1) for no private cap). It may be called from process or
// scheduler context and returns immediately.
func (n *Network) Start(bytes int64, limit float64, servers ...*Server) *Transfer {
	if bytes < 0 {
		panic("pcie: negative transfer size")
	}
	if limit <= 0 {
		panic("pcie: non-positive flow limit")
	}
	t := &Transfer{
		servers:   servers,
		limit:     limit,
		remaining: float64(bytes),
		last:      n.sim.Now(),
		done:      sim.NewCompletion("transfer"),
	}
	if bytes == 0 {
		t.done.Complete()
		return t
	}
	n.advance()
	n.flows = append(n.flows, t)
	n.reschedule()
	return t
}

// Transfer runs a flow to completion, blocking the calling process.
func (n *Network) Transfer(p *sim.Proc, bytes int64, limit float64, servers ...*Server) {
	n.Start(bytes, limit, servers...).Wait(p)
}

// advance integrates every flow's progress up to now at its current rate
// and completes flows that have drained.
func (n *Network) advance() {
	now := n.sim.Now()
	live := n.flows[:0]
	for _, f := range n.flows {
		dt := now.Sub(f.last).Seconds()
		f.remaining -= f.rate * dt
		f.last = now
		if f.remaining <= 0.5 { // sub-byte residue is float noise
			f.remaining = 0
			f.done.Complete()
			continue
		}
		live = append(live, f)
	}
	// Clear the tail so completed flows are collectable.
	for i := len(live); i < len(n.flows); i++ {
		n.flows[i] = nil
	}
	n.flows = live
}

// solve computes the max-min fair rate for every active flow by
// progressive filling: repeatedly find the most constrained server, fix
// the rates of the flows crossing it at their fair share, remove that
// capacity, and continue with the rest.
func (n *Network) solve() {
	for _, f := range n.flows {
		f.frozen = false
		f.rate = 0
	}
	type state struct {
		residual float64
		count    int
	}
	servers := make(map[*Server]*state)
	for _, f := range n.flows {
		for _, s := range f.servers {
			st := servers[s]
			if st == nil {
				st = &state{residual: s.capacity}
				servers[s] = st
			}
			st.count++
		}
	}
	unfrozen := len(n.flows)
	for unfrozen > 0 {
		// The binding constraint is either a server's fair share or a
		// flow's private limit, whichever is smallest.
		share := math.Inf(1)
		for _, st := range servers {
			if st.count == 0 {
				continue
			}
			if s := st.residual / float64(st.count); s < share {
				share = s
			}
		}
		for _, f := range n.flows {
			if !f.frozen && f.limit < share {
				share = f.limit
			}
		}
		if math.IsInf(share, 1) || share <= 0 {
			panic(fmt.Sprintf("pcie: solver stuck with %d unfrozen flows", unfrozen))
		}
		// Freeze every flow bound by this share: those whose limit is
		// (approximately) the share, and those crossing a server whose
		// fair share is (approximately) the share.
		const tol = 1e-9
		progressed := false
		for _, f := range n.flows {
			if f.frozen {
				continue
			}
			bound := f.limit <= share*(1+tol)
			if !bound {
				for _, s := range f.servers {
					st := servers[s]
					if st.residual/float64(st.count) <= share*(1+tol) {
						bound = true
						break
					}
				}
			}
			if !bound {
				continue
			}
			f.frozen = true
			f.rate = share
			unfrozen--
			progressed = true
			for _, s := range f.servers {
				st := servers[s]
				st.residual -= share
				if st.residual < 0 {
					st.residual = 0
				}
				st.count--
			}
		}
		if !progressed {
			panic("pcie: solver made no progress")
		}
	}
}

// reschedule re-solves rates and schedules the next completion event.
func (n *Network) reschedule() {
	n.gen++
	if len(n.flows) == 0 {
		return
	}
	n.solve()
	next := math.Inf(1)
	for _, f := range n.flows {
		if f.rate <= 0 {
			panic("pcie: active flow with zero rate")
		}
		if t := f.remaining / f.rate; t < next {
			next = t
		}
	}
	gen := n.gen
	n.sim.After(sim.Duration(math.Ceil(next*1e9)), func() {
		if gen != n.gen {
			return // a newer start/finish already re-solved
		}
		n.advance()
		n.reschedule()
	})
}
