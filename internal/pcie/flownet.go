// Package pcie models PCIe data movement as a fluid-flow network.
//
// Every bulk transfer (DMA or CPU window copy) is a flow crossing a set of
// capacitated servers: the source host's root complex, the wire of each
// traversed link, the destination root complex, and a private server for
// the mover's own maximum rate (DMA engine or CPU copy speed). Concurrent
// flows share server capacity max-min fairly; the network re-solves the
// allocation whenever a flow starts or finishes and advances each flow's
// progress in closed form between those instants.
//
// This is how the repository reproduces Fig 8 of the paper: one flow alone
// is bottlenecked by its DMA engine, while three simultaneous ring flows
// also contend pairwise inside each host's root complex, shaving a few
// percent off each — the paper's "slightly diminished" simultaneous rate.
//
// The solver is incremental and allocation-free on the hot path:
//
//   - servers are interned into the owning Network on first use and
//     indexed into pre-sized, epoch-stamped scratch arrays, so a solve
//     touches no maps and allocates nothing;
//   - flows start over a Route (an interned server list with a
//     precomputed bottleneck), and the single-flow case — every latency
//     sweep's common case — takes min(limit, bottleneck) with no solver
//     run at all;
//   - re-solves are coalesced per virtual instant: starts and finishes
//     landing at one timestamp mark the network dirty and a single solve
//     runs at the end of that instant via the simulator's same-timestamp
//     ready FIFO. Zero virtual time elapses between the coalesced
//     events, so the final rates — and every completion time — are
//     identical to solving after each event individually;
//   - Transfer records issued through the blocking Transfer/TransferRoute
//     calls are pooled and recycled.
package pcie

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// Server is a capacitated stage of the fabric (a root complex, a cable, a
// switch port). Capacity is in bytes per second of virtual time. A server
// belongs to at most one Network: it is interned on the first Route that
// crosses it.
type Server struct {
	name     string
	capacity float64
	net      *Network // owning network, set at interning
	idx      int      // index into the network's scratch arrays
}

// NewServer returns a server with the given capacity in bytes/second.
func NewServer(name string, capacity float64) *Server {
	if capacity <= 0 {
		panic("pcie: server capacity must be positive: " + name)
	}
	return &Server{name: name, capacity: capacity}
}

// Name returns the server's diagnostic label.
func (s *Server) Name() string { return s.name }

// Capacity returns the server's capacity in bytes/second.
func (s *Server) Capacity() float64 { return s.capacity }

// Route is an interned path through the network: the ordered server list
// a flow crosses, with the path's capacity bottleneck precomputed. Build
// one Route per (source, direction, mover) at topology-construction time
// and reuse it for every transfer, so the per-chunk path allocates
// nothing.
type Route struct {
	net        *Network
	servers    []*Server
	bottleneck float64 // min server capacity along the path
}

// NewRoute interns the listed servers into the network and returns the
// reusable route crossing them, in order.
func (n *Network) NewRoute(servers ...*Server) *Route {
	if len(servers) == 0 {
		panic("pcie: route with no servers")
	}
	bottleneck := math.Inf(1)
	for _, s := range servers {
		n.intern(s)
		if s.capacity < bottleneck {
			bottleneck = s.capacity
		}
	}
	return &Route{net: n, servers: servers, bottleneck: bottleneck}
}

// Bottleneck returns the route's minimum server capacity.
func (r *Route) Bottleneck() float64 { return r.bottleneck }

// intern assigns the server an index into the network's scratch arrays.
func (n *Network) intern(s *Server) {
	if s.net == n {
		return
	}
	if s.net != nil {
		panic("pcie: server " + s.name + " already belongs to another network")
	}
	s.net = n
	s.idx = len(n.servers)
	n.servers = append(n.servers, s)
	n.srvEpoch = append(n.srvEpoch, 0)
	n.residual = append(n.residual, 0)
	n.count = append(n.count, 0)
}

// Transfer is an in-flight flow. Wait blocks the calling process until the
// last byte has drained through every server.
type Transfer struct {
	route     *Route
	limit     float64
	remaining float64
	rate      float64
	last      sim.Time
	done      *sim.Completion
	frozen    bool // scratch for the solver
}

// Wait blocks until the transfer completes.
func (t *Transfer) Wait(p *sim.Proc) { t.done.Wait(p) }

// Done reports whether the transfer has completed.
func (t *Transfer) Done() bool { return t.done.Done() }

// Network is the fluid-flow solver bound to one simulator.
type Network struct {
	sim   *sim.Simulator // reset: keep; snap: keep — construction identity
	flows []*Transfer    // Reset asserts none in flight
	gen   uint64         // invalidates stale completion events; bumped by Reset and Restore; snap: keep — monotone, never captured

	// Interned servers and the solver's per-network scratch, indexed by
	// Server.idx. srvEpoch stamps which solve last initialised a slot, so
	// a solve touches only the servers its flows cross and nothing is
	// cleared between solves.
	servers  []*Server // reset: keep; snap: keep — interned; rebuilding them is the cold-start cost pooling avoids
	epoch    uint64    // reset: keep; snap: keep — monotone solve stamp; only equality with srvEpoch matters
	srvEpoch []uint64  // reset: keep; snap: keep — per-slot stamps stay valid under a monotone epoch
	residual []float64 // reset: keep; snap: keep — scratch, fully re-initialised by each solve's epoch check
	count    []int     // reset: keep; snap: keep — scratch, fully re-initialised by each solve's epoch check
	touched  []int32   // reset: keep; snap: keep — scratch; emptied when each solve retires

	// solvePending coalesces same-instant re-solves: the first start or
	// finish at an instant schedules one solve event at that instant and
	// later churn piggybacks on it.
	solvePending bool // reset: keep — Reset panics unless false

	// pool recycles Transfer records whose lifetime is confined to one
	// blocking Transfer/TransferRoute call.
	pool []*Transfer // reset: keep; snap: keep — warm record pool
}

// NewNetwork returns an empty flow network on s.
func NewNetwork(s *sim.Simulator) *Network {
	return &Network{sim: s}
}

// ActiveFlows reports the number of in-flight transfers.
func (n *Network) ActiveFlows() int { return len(n.flows) }

// Reset prepares the network for reuse after its simulator is rewound to
// time zero. Interned servers, routes, and the transfer pool all survive —
// rebuilding them is exactly the cold-start cost a pooled world avoids —
// and a generation bump quarantines any completion event state left from
// the previous run. The network must be quiescent: Reset panics if flows
// are still in flight or a solve is pending.
func (n *Network) Reset() {
	if len(n.flows) != 0 {
		panic(fmt.Sprintf("pcie: Reset with %d active flow(s)", len(n.flows)))
	}
	if n.solvePending {
		panic("pcie: Reset with a solve pending")
	}
	n.gen++
}

// Start begins a transfer through an ad-hoc route over the listed
// servers. It is the convenience form of StartRoute for callers without
// a prebuilt Route (tests, one-off transfers); the route is built — and
// allocated — per call.
func (n *Network) Start(bytes int64, limit float64, servers ...*Server) *Transfer {
	return n.StartRoute(bytes, limit, n.NewRoute(servers...))
}

// StartRoute begins a transfer of the given size along r, additionally
// capped at limit bytes/second (the mover's own speed; pass math.Inf(1)
// for no private cap). It may be called from process or scheduler
// context and returns immediately; the re-solve it forces is coalesced
// with any other flow churn at the current instant.
//
//ntblint:allocfree
func (n *Network) StartRoute(bytes int64, limit float64, r *Route) *Transfer {
	if bytes < 0 {
		panic("pcie: negative transfer size")
	}
	if limit <= 0 {
		panic("pcie: non-positive flow limit")
	}
	if r.net != n {
		panic("pcie: route belongs to another network")
	}
	t := n.getTransfer()
	t.route = r
	t.limit = limit
	t.remaining = float64(bytes)
	t.rate = 0
	t.last = n.sim.Now()
	if bytes == 0 {
		t.done.Complete()
		return t
	}
	n.advance()
	n.flows = append(n.flows, t)
	if len(n.flows) == 1 && !n.solvePending {
		// The network was idle: there is nothing to coalesce with, so
		// solve inline (the single-flow fast path) instead of spending a
		// same-instant event. Serial chunk streams — every latency sweep
		// — therefore cost exactly one scheduled event per flow. Should
		// more churn land at this instant after all, it re-solves; zero
		// virtual time separates the two solves, so rates and completion
		// times are unchanged.
		n.reschedule()
	} else {
		n.markDirty()
	}
	return t
}

// Transfer runs a flow to completion over an ad-hoc route, blocking the
// calling process.
func (n *Network) Transfer(p *sim.Proc, bytes int64, limit float64, servers ...*Server) {
	n.TransferRoute(p, bytes, limit, n.NewRoute(servers...))
}

// TransferRoute runs a flow to completion along r, blocking the calling
// process. The flow record is pooled: because the caller never sees it,
// the network recycles it once drained, and the steady-state per-transfer
// path allocates nothing.
//
//ntblint:allocfree
func (n *Network) TransferRoute(p *sim.Proc, bytes int64, limit float64, r *Route) {
	t := n.StartRoute(bytes, limit, r)
	t.done.Wait(p)
	t.route = nil
	n.pool = append(n.pool, t)
}

// getTransfer returns a recycled or fresh flow record.
//
//ntblint:allocfree
func (n *Network) getTransfer() *Transfer {
	if last := len(n.pool) - 1; last >= 0 {
		t := n.pool[last]
		n.pool = n.pool[:last]
		t.done.Reset()
		return t
	}
	//ntblint:allocok — pool miss; record is recycled forever after
	return &Transfer{done: sim.NewCompletion("transfer")}
}

// residueThreshold is the sub-byte remainder below which a flow counts as
// drained. Rates and instants are exact in the model, but progress is
// integrated in float64: a flow whose completion event was scheduled at
// ceil(remaining/rate) nanoseconds can arrive there with a residue of a
// fraction of a byte from rounding, which must complete rather than
// reschedule. Half a byte is orders of magnitude above accumulated float
// noise and below any real payload, so it cannot misclassify either way.
const residueThreshold = 0.5

// advance integrates every flow's progress up to now at its current rate
// and completes flows that have drained.
//
//ntblint:allocfree
func (n *Network) advance() {
	now := n.sim.Now()
	live := n.flows[:0]
	for _, f := range n.flows {
		dt := now.Sub(f.last).Seconds()
		f.remaining -= f.rate * dt
		f.last = now
		if f.remaining <= residueThreshold {
			f.remaining = 0
			f.done.Complete()
			continue
		}
		live = append(live, f)
	}
	// Clear the tail so completed flows are collectable.
	for i := len(live); i < len(n.flows); i++ {
		n.flows[i] = nil
	}
	n.flows = live
}

// solveArg is the Tick argument distinguishing a coalesced solve request
// from a flow-completion wakeup (which carries its generation stamp; the
// generation counter cannot reach ^uint64(0) in any feasible run).
const solveArg = ^uint64(0)

// markDirty schedules the instant's single coalesced solve, if not
// already pending. Starts, finishes and completion wakeups all funnel
// through here, so k same-instant events cost one solver run.
//
//ntblint:allocfree
func (n *Network) markDirty() {
	if n.solvePending {
		return
	}
	n.solvePending = true
	n.sim.AfterTick(0, n, solveArg)
}

// Tick handles the network's scheduled events (sim.Ticker): coalesced
// solve requests and flow-completion wakeups. A completion wakeup whose
// generation stamp is stale — a newer start or finish already re-solved
// and rescheduled — is ignored, so it can never complete a flow early or
// double-fire.
//
//ntblint:allocfree
func (n *Network) Tick(arg uint64) {
	if arg == solveArg {
		n.solvePending = false
		n.advance()
		n.reschedule()
		return
	}
	if arg != n.gen {
		return // stale completion event
	}
	// Integrate to this instant (completing drained flows and waking
	// their waiters), then defer the re-solve so that new flows those
	// waiters start at this same instant share it. A drain that empties
	// the network needs no re-solve at all: this event was the only live
	// one, and the next StartRoute solves for itself.
	n.advance()
	if len(n.flows) == 0 {
		return
	}
	n.markDirty()
}

// solve computes the max-min fair rate for every active flow. The
// overwhelmingly common single-flow case needs no solver at all: the
// flow's rate is its private limit or its route's precomputed
// bottleneck, whichever is smaller — exactly what progressive filling
// would conclude.
//
//ntblint:allocfree
func (n *Network) solve() {
	if len(n.flows) == 1 {
		f := n.flows[0]
		rate := f.limit
		if b := f.route.bottleneck; b < rate {
			rate = b
		}
		f.rate = rate
		return
	}
	n.solveFull()
}

// solveFull runs progressive filling over the epoch-stamped scratch
// arrays: repeatedly find the most constrained server, fix the rates of
// the flows crossing it at their fair share, remove that capacity, and
// continue with the rest. It allocates nothing: server state lives in
// the pre-sized per-network arrays, initialised lazily per solve by
// epoch stamp.
//
//ntblint:allocfree
func (n *Network) solveFull() {
	n.epoch++
	e := n.epoch
	touched := n.touched[:0]
	for _, f := range n.flows {
		f.frozen = false
		f.rate = 0
		for _, s := range f.route.servers {
			i := s.idx
			if n.srvEpoch[i] != e {
				n.srvEpoch[i] = e
				n.residual[i] = s.capacity
				n.count[i] = 0
				touched = append(touched, int32(i))
			}
			n.count[i]++
		}
	}
	n.touched = touched
	unfrozen := len(n.flows)
	for unfrozen > 0 {
		// The binding constraint is either a server's fair share or a
		// flow's private limit, whichever is smallest.
		share := math.Inf(1)
		for _, i := range touched {
			if n.count[i] == 0 {
				continue
			}
			if s := n.residual[i] / float64(n.count[i]); s < share {
				share = s
			}
		}
		for _, f := range n.flows {
			if !f.frozen && f.limit < share {
				share = f.limit
			}
		}
		if math.IsInf(share, 1) || share <= 0 {
			panic(fmt.Sprintf("pcie: solver stuck with %d unfrozen flows", unfrozen))
		}
		// Freeze every flow bound by this share: those whose limit is
		// (approximately) the share, and those crossing a server whose
		// fair share is (approximately) the share.
		const tol = 1e-9
		progressed := false
		for _, f := range n.flows {
			if f.frozen {
				continue
			}
			bound := f.limit <= share*(1+tol)
			if !bound {
				for _, s := range f.route.servers {
					i := s.idx
					if n.residual[i]/float64(n.count[i]) <= share*(1+tol) {
						bound = true
						break
					}
				}
			}
			if !bound {
				continue
			}
			f.frozen = true
			f.rate = share
			unfrozen--
			progressed = true
			for _, s := range f.route.servers {
				i := s.idx
				n.residual[i] -= share
				if n.residual[i] < 0 {
					n.residual[i] = 0
				}
				n.count[i]--
			}
		}
		if !progressed {
			panic("pcie: solver made no progress")
		}
	}
}

// reschedule re-solves rates and schedules the next completion event.
// Each run bumps the generation, invalidating every previously scheduled
// completion wakeup.
//
//ntblint:allocfree
func (n *Network) reschedule() {
	n.gen++
	if len(n.flows) == 0 {
		return
	}
	n.solve()
	next := math.Inf(1)
	for _, f := range n.flows {
		if f.rate <= 0 {
			panic("pcie: active flow with zero rate")
		}
		if t := f.remaining / f.rate; t < next {
			next = t
		}
	}
	n.sim.AfterTick(sim.Duration(math.Ceil(next*1e9)), n, n.gen)
}
