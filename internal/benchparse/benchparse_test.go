package benchparse

import (
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	const out = `
goos: linux
goarch: amd64
pkg: repro/internal/core
BenchmarkWorldSpawnTeardown-8       100     1234567 ns/op    45678 B/op     910 allocs/op
BenchmarkWorldPut1M-8                50     2345678 ns/op      100 B/op       2 allocs/op
BenchmarkFlowNetChurn-16        1000000        1234 ns/op        0 B/op       0 allocs/op
BenchmarkNoMem-8                   2000        5678 ns/op
PASS
ok      repro/internal/core 3.456s
`
	got, err := Parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("parsed %d results, want 4: %+v", len(got), got)
	}
	r := got[1]
	if r.Name != "BenchmarkWorldPut1M" || r.Iterations != 50 || r.AllocsPerOp != 2 || r.BytesPerOp != 100 {
		t.Errorf("unexpected result: %+v", r)
	}
	if got[2].Name != "BenchmarkFlowNetChurn" || got[2].AllocsPerOp != 0 {
		t.Errorf("unexpected result: %+v", got[2])
	}
	if got[3].AllocsPerOp != -1 || got[3].BytesPerOp != -1 {
		t.Errorf("missing -benchmem fields should be -1: %+v", got[3])
	}
	if got[3].NsPerOp != 5678 {
		t.Errorf("ns/op = %v, want 5678", got[3].NsPerOp)
	}
}

func TestParseDuplicatesKeepLast(t *testing.T) {
	const out = `
BenchmarkX-8   100   200 ns/op   0 B/op   1 allocs/op
BenchmarkX-8   100   150 ns/op   0 B/op   1 allocs/op
`
	got, err := Parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].NsPerOp != 150 {
		t.Fatalf("want single result with last ns/op, got %+v", got)
	}
}
