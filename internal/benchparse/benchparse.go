// Package benchparse reads the text output of `go test -bench -benchmem`
// into structured results, for the allocation regression gate
// (cmd/benchgate) and the machine-readable run metrics (cmd/reproduce
// -bench-json). Only the standard benchmark line format is understood:
//
//	BenchmarkName-8   100   12345 ns/op   678 B/op   9 allocs/op
//
// Sub-benchmarks keep their slash-separated names; the trailing -N
// GOMAXPROCS suffix is stripped so results are comparable across
// machines.
package benchparse

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line. Metrics that were absent from the
// line (a run without -benchmem) are -1. Custom metrics emitted with
// b.ReportMetric (events/s, worlds/s, ...) land in Extra keyed by their
// unit string.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// trimProcs removes the -N GOMAXPROCS suffix from a benchmark name.
func trimProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// Parse reads benchmark lines from r, skipping everything that is not
// one. Duplicate names (e.g. -count runs) keep the last occurrence.
func Parse(r io.Reader) ([]Result, error) {
	var out []Result
	byName := make(map[string]int)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		res, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		if i, dup := byName[res.Name]; dup {
			out[i] = res
			continue
		}
		byName[res.Name] = len(out)
		out = append(out, res)
	}
	return out, sc.Err()
}

func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{
		Name:        trimProcs(fields[0]),
		Iterations:  iters,
		NsPerOp:     -1,
		BytesPerOp:  -1,
		AllocsPerOp: -1,
	}
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			if v, err := strconv.ParseFloat(val, 64); err == nil {
				res.NsPerOp = v
			}
		case "B/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				res.BytesPerOp = v
			}
		case "allocs/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				res.AllocsPerOp = v
			}
		default:
			// Custom b.ReportMetric units; anything non-numeric is one of
			// the free-form words in a non-benchmark line, skipped.
			if v, err := strconv.ParseFloat(val, 64); err == nil {
				if res.Extra == nil {
					res.Extra = make(map[string]float64)
				}
				res.Extra[unit] = v
			}
		}
	}
	if res.NsPerOp < 0 {
		return Result{}, false
	}
	return res, true
}
